open Mvcc_core

let blind_write_positions s =
  let seen_read = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iteri
    (fun pos (st : Step.t) ->
      match st.action with
      | Step.Read -> Hashtbl.replace seen_read (st.txn, st.entity) ()
      | Step.Write ->
          if not (Hashtbl.mem seen_read (st.txn, st.entity)) then begin
            acc := pos :: !acc;
            (* the inserted read covers later writes of the same entity *)
            Hashtbl.replace seen_read (st.txn, st.entity) ()
          end)
    (Schedule.steps s);
  List.rev !acc

let has_blind_writes s = blind_write_positions s <> []

let transform s =
  let blind = blind_write_positions s in
  let steps =
    Array.to_list (Schedule.steps s)
    |> List.mapi (fun pos (st : Step.t) ->
           if List.mem pos blind then [ Step.read st.txn st.entity; st ]
           else [ st ])
    |> List.concat
  in
  Schedule.of_steps ~n_txns:(Schedule.n_txns s) steps

let test s = Mvsr.test (transform s)

module Witness = Mvcc_provenance.Witness

let decide s =
  let ok, (w : Witness.t) = Mvsr.decide (transform s) in
  let claim =
    if ok then Witness.Member Witness.Dmvsr else Witness.Non_member Witness.Dmvsr
  in
  (ok, { w with claim })
