open Mvcc_core

let blind_write_positions s =
  let seen_read = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iteri
    (fun pos (st : Step.t) ->
      match st.action with
      | Step.Read -> Hashtbl.replace seen_read (st.txn, st.entity) ()
      | Step.Write ->
          if not (Hashtbl.mem seen_read (st.txn, st.entity)) then begin
            acc := pos :: !acc;
            (* the inserted read covers later writes of the same entity *)
            Hashtbl.replace seen_read (st.txn, st.entity) ()
          end)
    (Schedule.steps s);
  List.rev !acc

let has_blind_writes s = blind_write_positions s <> []

let transform s =
  let blind = blind_write_positions s in
  let steps =
    Array.to_list (Schedule.steps s)
    |> List.mapi (fun pos (st : Step.t) ->
           if List.mem pos blind then [ Step.read st.txn st.entity; st ]
           else [ st ])
    |> List.concat
  in
  Schedule.of_steps ~n_txns:(Schedule.n_txns s) steps

module Ctx = Mvcc_analysis.Ctx
module Witness = Mvcc_provenance.Witness

(* The context of the blind-write-padded schedule. When there are no
   blind writes the transform is the identity, so the sub-context IS the
   context itself and the MVSR search is shared with the MVSR decider. *)
let sub_key : Ctx.t Ctx.key = Ctx.key "dmvsr_transform"

let sub_ctx c =
  Ctx.memo c sub_key (fun c ->
      let s = Ctx.schedule c in
      if has_blind_writes s then Ctx.make (transform s) else c)

module Decider = struct
  let name = "DMVSR"
  let test c = Mvsr.Decider.test (sub_ctx c)
  let witness _ = None
  let violation _ = None

  let decide c =
    let ok, (w : Witness.t) = Mvsr.Decider.decide (sub_ctx c) in
    let claim =
      if ok then Witness.Member Witness.Dmvsr
      else Witness.Non_member Witness.Dmvsr
    in
    (ok, { w with claim })
end

let test s = Decider.test (Ctx.make s)
let decide s = Decider.decide (Ctx.make s)
