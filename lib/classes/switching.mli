(** The switching characterization of MVCSR (Theorem 2).

    Write [s ~ s'] when [s'] is obtained from [s] by exchanging two
    consecutive steps that do not multiversion-conflict (i.e. the pair is
    not a read followed by a write of the same entity by another
    transaction; steps of the same transaction are never exchanged).
    Theorem 2: [s] is MVCSR iff some serial schedule is reachable from [s]
    under the reflexive-transitive closure of [~].

    This module decides reachability by breadth-first search over the
    (factorially large) space of reorderings — an independent oracle used
    to cross-validate the MVCG test on small schedules, and to measure
    switching distances. *)

val neighbours : Mvcc_core.Schedule.t -> Mvcc_core.Schedule.t list
(** All schedules one legal switch away. *)

val reaches_serial :
  ?max_states:int -> Mvcc_core.Schedule.t -> Mvcc_core.Schedule.t option
(** The first serial schedule found reachable by switchings, if any.
    [max_states] (default 200_000) bounds the explored state count;
    @raise Failure if the bound is exhausted before the search space. *)

val test : ?max_states:int -> Mvcc_core.Schedule.t -> bool
(** Theorem 2 decision: a serial schedule is reachable. *)

val reaches_serial_ctx :
  Mvcc_analysis.Ctx.t -> Mvcc_core.Schedule.t option
(** {!reaches_serial} at the default state bound, cached in the context
    (one BFS per context however many switching queries run). *)

val test_ctx : Mvcc_analysis.Ctx.t -> bool

val distance_to_serial : ?max_states:int -> Mvcc_core.Schedule.t -> int option
(** Minimum number of switches to reach some serial schedule. *)

val path_to_serial :
  ?max_states:int -> Mvcc_core.Schedule.t -> Mvcc_core.Schedule.t list option
(** A shortest switching sequence (including both endpoints). *)
