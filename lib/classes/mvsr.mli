(** Multiversion serializability (MVSR, Section 2).

    A schedule [s] is MVSR iff some version function [V] makes the full
    schedule [(s, V)] view-equivalent to a serial full schedule. MVSR is
    the performance limit of the multiversion approach, and testing it is
    NP-complete [8]; this module implements an exact exponential decision
    procedure.

    The search uses the characterization: [s] is MVSR iff there is a
    permutation [π] of the transactions such that for every read step
    [R_i(x)] with no earlier own write of [x], the last transaction [T_j]
    before [T_i] in [π] that writes [x] (if any) has its last write of [x]
    {e before} [R_i(x)] in [s] — then [V] can legally serve exactly the
    versions the serial schedule [π] produces. The search backtracks over
    which transaction to append next, with state (placed set, last writer
    per entity) and memoization.

    Convention: the paper's version [x_j] is the value of [T_j]'s {e last}
    write of [x] (the paper writes one value [x_j] per transaction and
    entity). *)

module Decider : Mvcc_analysis.Decider.S
(** The MVSR decision procedures over a shared analysis context: the
    unpinned backtracking search runs once per context (memoized under a
    context key) however many operations are called. [witness] is the
    serialization of the certificate order; [violation] is [None]. *)

val certificate_ctx :
  Mvcc_analysis.Ctx.t -> (int list * Mvcc_core.Version_fn.t) option
(** {!certificate} through the context's cached search. *)

val test : Mvcc_core.Schedule.t -> bool
(** Exact MVSR decision. Exponential in the number of transactions. *)

val certificate :
  Mvcc_core.Schedule.t -> (int list * Mvcc_core.Version_fn.t) option
(** A serialization order [π] and a total legal version function [V] with
    [(s, V)] view-equivalent to [(serialization s π, standard)]. *)

val test_pinned :
  Mvcc_core.Schedule.t -> pinned:Mvcc_core.Version_fn.t -> bool
(** Like {!test}, but the reads in [pinned]'s domain must be served exactly
    the pinned versions (the on-line constraint of Section 4: versions
    already handed out by a scheduler cannot be revoked).
    @raise Invalid_argument if [pinned] is not legal for [s]. *)

val certificate_pinned :
  Mvcc_core.Schedule.t ->
  pinned:Mvcc_core.Version_fn.t ->
  (int list * Mvcc_core.Version_fn.t) option

val serializable_with :
  Mvcc_core.Schedule.t -> Mvcc_core.Version_fn.t -> bool
(** Is the full schedule [(s, V)] serializable? [V] must be total and
    legal. Equivalent to [test_pinned s ~pinned:V]. *)

val test_naive : Mvcc_core.Schedule.t -> bool
(** Paper-literal oracle: enumerate all legal version functions and all
    serializations and compare READ-FROM relations. Doubly exponential;
    for cross-validation on very small schedules only. *)

val decide : Mvcc_core.Schedule.t -> bool * Mvcc_provenance.Witness.t
(** The verdict of {!test} with a checkable certificate: the
    serialization order and induced version function on acceptance, the
    search effort (placements tried, memo prunes) on rejection. *)
