(** One-call classification reports: every class verdict with its witness
    or violation, for the CLI and for interactive exploration. *)

type verdict = {
  in_class : bool;
  witness : Mvcc_core.Schedule.t option;
      (** an equivalent serial schedule, when membership holds and the
          procedure is constructive *)
  note : string option;  (** violation summary when membership fails *)
}

type t = {
  schedule : Mvcc_core.Schedule.t;
  serial : bool;
  csr : verdict;
  vsr : verdict;
  fsr : verdict;
  mvcsr : verdict;
  mvsr : verdict;
  dmvsr : verdict;
  region : Topography.region;
  mvsr_certificate : (int list * Mvcc_core.Version_fn.t) option;
}

val make : Mvcc_core.Schedule.t -> t
(** Run every decision procedure (exponential for the NP-complete ones).
    All verdicts are derived from one shared {!Mvcc_analysis.Ctx}: the
    conflict graph, MVCG, polygraph solve and MVSR search each run
    once. *)

val of_ctx : Mvcc_analysis.Ctx.t -> t
(** {!make} over a caller-provided context (for callers that also need
    other analyses of the same schedule). *)

val make_batch :
  ?pool:Mvcc_exec.Pool.t -> Mvcc_core.Schedule.t list -> t list
(** Reports for many schedules, optionally in parallel. Results are in
    input order and identical to [List.map make] regardless of the
    pool's job count (each domain builds its own contexts). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)
