(** The topography of schedule classes (Fig. 1) and the paper's six
    witness schedules.

    Fig. 1 draws: serial ⊂ CSR; CSR ⊂ SR(=VSR) ⊂ MVSR; CSR ⊂ MVCSR ⊂
    MVSR; with MVCSR and SR overlapping but incomparable. [classify]
    computes a schedule's membership in every class; [region] names the
    Fig. 1 region it falls in. *)

type membership = {
  serial : bool;
  csr : bool;
  vsr : bool;
  mvcsr : bool;
  mvsr : bool;
  dmvsr : bool;
}

val classify : Mvcc_core.Schedule.t -> membership
(** Run every decision procedure. Exponential in the worst case (VSR and
    MVSR are NP-complete). *)

val classify_ctx : Mvcc_analysis.Ctx.t -> membership
(** {!classify} over a shared analysis context: all six memberships are
    read off the context's caches (the DMVSR search reuses the MVSR one
    when the schedule has no blind writes). *)

val consistent : membership -> bool
(** Do the memberships respect the provable containments: serial ⊆ CSR;
    CSR ⊆ VSR ∩ MVCSR; VSR ∪ MVCSR ∪ DMVSR ⊆ MVSR; DMVSR ⊆ MVCSR? *)

type region =
  | Outside_mvsr  (** not even MVSR — example (1) *)
  | Mvsr_only  (** MVSR but neither VSR nor MVCSR — example (2) *)
  | Vsr_not_mvcsr  (** VSR (hence MVSR) but not MVCSR — example (3) *)
  | Mvcsr_not_vsr  (** MVCSR but not VSR — example (4) *)
  | Vsr_and_mvcsr_not_csr  (** in both, not CSR — example (5) *)
  | Csr_not_serial  (** CSR but not serial *)
  | Serial  (** example (6) *)

val region : membership -> region
val region_name : region -> string

val fig1_examples : (string * region * Mvcc_core.Schedule.t) list
(** The paper's example schedules (1)-(6), with the region each is claimed
    to witness. (1) s1 non-MVSR; (2) s2 MVSR but not SR or MVCSR; (3) s3 SR
    but not MVCSR; (4) s4 MVCSR but not SR; (5) s5 MVCSR and SR but not
    CSR; (6) a serial schedule. *)

val pp_membership : Format.formatter -> membership -> unit
