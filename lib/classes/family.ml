open Mvcc_core
module Digraph = Mvcc_graph.Digraph
module Cycle = Mvcc_graph.Cycle
module Topo = Mvcc_graph.Topo
module Ctx = Mvcc_analysis.Ctx
module Witness = Mvcc_provenance.Witness

type conflict_kind = Ww | Wr | Rw

let all_kinds = [ Ww; Wr; Rw ]

let kind_name = function Ww -> "WW" | Wr -> "WR" | Rw -> "RW"

let pp_kinds ppf = function
  | [] -> Format.pp_print_string ppf "{}"
  | kinds ->
      Format.fprintf ppf "{%s}"
        (String.concat "," (List.map kind_name kinds))

let bools ~kinds =
  (List.mem Ww kinds, List.mem Wr kinds, List.mem Rw kinds)

let mask ~kinds =
  let ww, wr, rw = bools ~kinds in
  (if ww then 4 else 0) + (if wr then 2 else 0) + if rw then 1 else 0

let graph_ctx ~kinds c =
  let ww, wr, rw = bools ~kinds in
  Ctx.kind_graph c ~ww ~wr ~rw

(* Per-mask topological orders and shortest cycles, cached like the
   CSR/MVCSR ones. The full subset and {Rw} alias the dedicated
   conflict-graph/MVCG caches so lattice sweeps share them. *)
let topo_keys : int list option Ctx.key array =
  Array.init 8 (fun m -> Ctx.key (Printf.sprintf "kind_topo:%d" m))

let cycle_keys : (int * int) list option Ctx.key array =
  Array.init 8 (fun m -> Ctx.key (Printf.sprintf "kind_shortest_cycle:%d" m))

let topo_ctx ~kinds c =
  match mask ~kinds with
  | 7 -> Ctx.conflict_topo c
  | 1 -> Ctx.mv_topo c
  | m -> Ctx.memo c topo_keys.(m) (fun c -> Topo.sort (graph_ctx ~kinds c))

let shortest_cycle_ctx ~kinds c =
  match mask ~kinds with
  | 7 -> Ctx.conflict_shortest_cycle c
  | 1 -> Ctx.mv_shortest_cycle c
  | m ->
      Ctx.memo c cycle_keys.(m) (fun c ->
          Cycle.shortest_cycle (graph_ctx ~kinds c))

let graph ~kinds s = graph_ctx ~kinds (Ctx.make s)

let test ~kinds s = Cycle.is_acyclic (graph ~kinds s)

let witness ~kinds s =
  match Topo.sort (graph ~kinds s) with
  | None -> None
  | Some order -> Some (Schedule.serialization s order)

let decider ~kinds : Mvcc_analysis.Decider.t =
  let ww, wr, rw = bools ~kinds in
  (module struct
    let name = Witness.kinds_name ~ww ~wr ~rw
    let test c = topo_ctx ~kinds c <> None

    let witness c =
      Option.map
        (Schedule.serialization (Ctx.schedule c))
        (topo_ctx ~kinds c)

    let violation c =
      Option.map (List.map fst) (shortest_cycle_ctx ~kinds c)

    let decide c =
      match topo_ctx ~kinds c with
      | Some order ->
          ( true,
            { Witness.claim = Member (Kinds { ww; wr; rw });
              evidence = Accept_topo order;
            } )
      | None ->
          let arcs = Option.get (shortest_cycle_ctx ~kinds c) in
          ( false,
            { Witness.claim = Non_member (Kinds { ww; wr; rw });
              evidence = Reject_cycle arcs;
            } )
  end)

let subsets =
  [ []; [ Ww ]; [ Wr ]; [ Rw ]; [ Ww; Wr ]; [ Ww; Rw ]; [ Wr; Rw ];
    [ Ww; Wr; Rw ] ]

let safe ~kinds = List.mem Rw kinds
