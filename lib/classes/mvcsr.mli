(** Multiversion conflict serializability (MVCSR, Section 3).

    A schedule is MVCSR iff it is multiversion-conflict-equivalent to a
    serial schedule. Theorem 1: iff its multiversion conflict graph MVCG is
    acyclic — so MVCSR is decidable in polynomial time, and the paper
    proposes it as the multiversion analogue of CSR. Theorem 3: every
    MVCSR schedule is MVSR. *)

module Decider : Mvcc_analysis.Decider.S
(** The MVCSR decision procedures over a shared analysis context: the
    multiversion conflict graph, its topological order and its cycles
    are computed once per context however many operations are called. *)

val test : Mvcc_core.Schedule.t -> bool
(** [test s] iff MVCG(s) is acyclic (Theorem 1). *)

val witness : Mvcc_core.Schedule.t -> Mvcc_core.Schedule.t option
(** A serial schedule to which [s] is multiversion-conflict-equivalent:
    the transactions in topological order of MVCG(s) (the construction in
    Theorem 1's (if) direction). *)

val violation : Mvcc_core.Schedule.t -> int list option
(** A cycle of MVCG(s) if [s] is not MVCSR. *)

val decide : Mvcc_core.Schedule.t -> bool * Mvcc_provenance.Witness.t
(** The verdict of {!test} with a checkable certificate: a topological
    order of MVCG(s) on acceptance, a shortest MVCG cycle on
    rejection. *)

val version_fn_for :
  Mvcc_core.Schedule.t -> Mvcc_core.Schedule.t -> Mvcc_core.Version_fn.t
(** The version function of Theorem 3's proof: given [s] multiversion-
    conflict-equivalent to serial [r], the function making [(s, V)]
    view-equivalent to [(r, V_r)] — each read of [s] is assigned the write
    it reads from in [r].
    @raise Invalid_argument if a required write does not precede the read
    in [s] (i.e. the schedules are not mv-conflict-equivalent). *)
