open Mvcc_core
module Acyclicity = Mvcc_polygraph.Acyclicity
module Ctx = Mvcc_analysis.Ctx
module Witness = Mvcc_provenance.Witness
module Topo = Mvcc_graph.Topo

let polygraph_of s = Ctx.polygraph (Ctx.make s)

(* Drop the padding transactions T0 (index 0) and Tf (index n+1) and
   shift back to original indices. *)
let unpad_order s order =
  let n = Schedule.n_txns s in
  List.filter_map
    (fun i -> if i = 0 || i = n + 1 then None else Some (i - 1))
    order

module Decider = struct
  let name = "VSR"
  let test c = fst (Ctx.polygraph_solution c) <> None

  let witness c =
    match fst (Ctx.polygraph_solution c) with
    | None -> None
    | Some g ->
        let s = Ctx.schedule c in
        let order = Option.get (Topo.sort g) in
        Some (Schedule.serialization s (unpad_order s order))

  let violation _ = None

  let decide c =
    let s = Ctx.schedule c in
    match Ctx.polygraph_solution c with
    | Some g, _ ->
        let order = Option.get (Topo.sort g) in
        ( true,
          { Witness.claim = Member Vsr;
            evidence = Accept_topo (unpad_order s order);
          } )
    | None, { Acyclicity.branches; propagated } ->
        ( false,
          { Witness.claim = Non_member Vsr;
            evidence = Reject_exhausted { branches; propagated };
          } )
end

let test s = Decider.test (Ctx.make s)
let witness s = Decider.witness (Ctx.make s)
let decide s = Decider.decide (Ctx.make s)

let test_exact s =
  List.exists
    (fun r -> Equiv.view_equivalent s r)
    (Schedule.all_serializations s)

let decide_sat_ctx c =
  let s = Ctx.schedule c in
  let p = Ctx.polygraph c in
  let cnf = Mvcc_polygraph.Sat_encoding.encode p in
  match Mvcc_sat.Dpll.solve_stats cnf with
  | Some a, _ ->
      let order = Mvcc_polygraph.Sat_encoding.order_of_assignment p a in
      ( true,
        { Witness.claim = Member Vsr;
          evidence = Accept_assignment (unpad_order s order);
        } )
  | None, { Mvcc_sat.Dpll.decisions; propagations } ->
      ( false,
        { Witness.claim = Non_member Vsr;
          evidence =
            Reject_exhausted { branches = decisions; propagated = propagations };
        } )

let decide_sat s = decide_sat_ctx (Ctx.make s)
