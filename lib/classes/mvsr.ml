open Mvcc_core

(* Per-read data gathered once per search:
   - pos: position of the read in s
   - ent: dense entity id
   - own_prev: position of the transaction's own write of the entity
     immediately preceding the read in program order, if any (in a serial
     schedule the read is served that write)
   - pin: the source this read must be served, if constrained. *)
type read_info = {
  pos : int;
  ent : int;
  own_prev : int option;
  pin : Version_fn.source option;
}

type txn_info = {
  reads : read_info list;
  writes : int list; (* entity ids written, deduplicated *)
}

type ctx = {
  txns : txn_info array;
  write_positions : int list array array; (* (txn, ent) -> ascending *)
  n_ents : int;
  step_txn : int array; (* position -> transaction *)
}

let analyse s pinned =
  (* dense entity ids come straight from the schedule's interned index;
     renaming ids only permutes the last-writer state vector, so the
     search explores the same tree either way *)
  let n = Schedule.n_txns s in
  let n_ents = Schedule.n_entities s in
  let write_positions = Array.make_matrix n (max 1 n_ents) [] in
  let own_last = Array.make_matrix n (max 1 n_ents) (-1) in
  let reads = Array.make n [] in
  let writes = Array.make n [] in
  Array.iteri
    (fun pos (st : Step.t) ->
      let e = Schedule.entity_at s pos in
      match st.action with
      | Step.Write ->
          own_last.(st.txn).(e) <- pos;
          write_positions.(st.txn).(e) <- pos :: write_positions.(st.txn).(e);
          if not (List.mem e writes.(st.txn)) then
            writes.(st.txn) <- e :: writes.(st.txn)
      | Step.Read ->
          let own_prev =
            if own_last.(st.txn).(e) >= 0 then Some own_last.(st.txn).(e)
            else None
          in
          let pin = Version_fn.get pinned pos in
          reads.(st.txn) <- { pos; ent = e; own_prev; pin } :: reads.(st.txn))
    (Schedule.steps s);
  Array.iteri
    (fun i row ->
      Array.iteri (fun e ps -> write_positions.(i).(e) <- List.rev ps) row)
    write_positions;
  let txns =
    Array.init n (fun i -> { reads = List.rev reads.(i); writes = writes.(i) })
  in
  let step_txn =
    Array.map (fun (st : Step.t) -> st.txn) (Schedule.steps s)
  in
  { txns; write_positions; n_ents; step_txn }

let first_write ctx j e =
  match ctx.write_positions.(j).(e) with [] -> None | p :: _ -> Some p

let latest_write_before ctx j e pos =
  List.fold_left
    (fun acc p -> if p < pos then Some p else acc)
    None
    ctx.write_positions.(j).(e)

(* Can transaction [i] be appended, given the last writer of each entity
   among the transactions placed so far (txn index, or -1 for T0)?

   Triple-set semantics (the paper's view equivalence): an external read of
   [x] must produce the triple (T_i, x, w) where w is the current last
   writer — possible iff some write of w on x precedes the read in s. *)
let can_place ctx last_writer i =
  List.for_all
    (fun r ->
      match r.pin with
      | None -> begin
          match r.own_prev with
          | Some _ -> true (* own read: always consistent and legal *)
          | None -> begin
              match last_writer.(r.ent) with
              | -1 -> true (* reads the initial version *)
              | j -> (
                  match first_write ctx j r.ent with
                  | Some p -> p < r.pos
                  | None -> false (* unreachable: j writes r.ent *))
            end
        end
      | Some Version_fn.Initial ->
          r.own_prev = None && last_writer.(r.ent) = -1
      | Some (Version_fn.From q) ->
          let j = ctx.step_txn.(q) in
          if j = i then r.own_prev <> None
          else r.own_prev = None && last_writer.(r.ent) = j)
    ctx.txns.(i).reads

let state_key mask last_writer =
  let buf = Buffer.create 16 in
  Buffer.add_string buf (string_of_int mask);
  Array.iter
    (fun w ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int w))
    last_writer;
  Buffer.contents buf

(* The version function induced by a serialization order: pinned reads keep
   their pin; own reads are served the preceding own write; external reads
   the last preceding write (in s) of the entity's last writer before the
   reader in the order. *)
let induced_version_fn ctx order =
  let last_writer = Array.make ctx.n_ents (-1) in
  let v = ref Version_fn.empty in
  List.iter
    (fun i ->
      List.iter
        (fun r ->
          let src =
            match r.pin with
            | Some p -> p
            | None -> begin
                match r.own_prev with
                | Some q -> Version_fn.From q
                | None -> begin
                    match last_writer.(r.ent) with
                    | -1 -> Version_fn.Initial
                    | j -> (
                        match latest_write_before ctx j r.ent r.pos with
                        | Some q -> Version_fn.From q
                        | None -> assert false (* can_place guaranteed one *))
                  end
              end
          in
          v := Version_fn.add r.pos src !v)
        ctx.txns.(i).reads;
      List.iter (fun e -> last_writer.(e) <- i) ctx.txns.(i).writes)
    order;
  !v

(* The search, instrumented: [branches] counts transaction placements
   tried, [memo_hits] counts subtrees pruned by the memo table — the
   effort figures a rejection certificate carries. *)
let search_stats s pinned =
  if not (Version_fn.legal s pinned) then
    invalid_arg "Mvsr: pinned version function not legal";
  let ctx = analyse s pinned in
  let n = Array.length ctx.txns in
  let memo = Hashtbl.create 256 in
  let last_writer = Array.make ctx.n_ents (-1) in
  let branches = ref 0 in
  let memo_hits = ref 0 in
  let rec go mask depth acc =
    if depth = n then Some (List.rev acc)
    else
      let key = state_key mask last_writer in
      if Hashtbl.mem memo key then begin
        incr memo_hits;
        None
      end
      else begin
        let rec try_txn i =
          if i >= n then None
          else if mask land (1 lsl i) = 0 && can_place ctx last_writer i
          then begin
            incr branches;
            let saved =
              List.map (fun e -> (e, last_writer.(e))) ctx.txns.(i).writes
            in
            List.iter (fun e -> last_writer.(e) <- i) ctx.txns.(i).writes;
            match go (mask lor (1 lsl i)) (depth + 1) (i :: acc) with
            | Some order -> Some order
            | None ->
                List.iter (fun (e, w) -> last_writer.(e) <- w) saved;
                try_txn (i + 1)
          end
          else try_txn (i + 1)
        in
        let result = try_txn 0 in
        if result = None then Hashtbl.replace memo key ();
        result
      end
  in
  let result =
    match go 0 0 [] with
    | None -> None
    | Some order -> Some (order, induced_version_fn ctx order)
  in
  (result, !branches, !memo_hits)

let search s pinned =
  let r, _, _ = search_stats s pinned in
  r

let certificate_pinned s ~pinned = search s pinned
let certificate s = search s Version_fn.empty

module Actx = Mvcc_analysis.Ctx
module Witness = Mvcc_provenance.Witness

(* One unpinned backtracking search per context, shared by the test,
   witness, certificate and certificate paths. *)
let search_key : ((int list * Version_fn.t) option * int * int) Actx.key =
  Actx.key "mvsr_search"

let search_ctx c =
  Actx.memo c search_key (fun c ->
      search_stats (Actx.schedule c) Version_fn.empty)

let certificate_ctx c =
  let r, _, _ = search_ctx c in
  r

module Decider = struct
  let name = "MVSR"

  let test c =
    let r, _, _ = search_ctx c in
    r <> None

  let witness c =
    Option.map
      (fun (order, _) -> Schedule.serialization (Actx.schedule c) order)
      (certificate_ctx c)

  let violation _ = None

  let decide c =
    match search_ctx c with
    | Some (order, v), _, _ ->
        ( true,
          { Witness.claim = Member Mvsr;
            evidence = Accept_version_fn (order, v);
          } )
    | None, branches, propagated ->
        ( false,
          { Witness.claim = Non_member Mvsr;
            evidence = Reject_exhausted { branches; propagated };
          } )
end

let decide s = Decider.decide (Actx.make s)
let test s = Option.is_some (certificate s)
let test_pinned s ~pinned = Option.is_some (certificate_pinned s ~pinned)

let serializable_with s v =
  if not (Version_fn.total s v) then
    invalid_arg "Mvsr.serializable_with: version function not total";
  test_pinned s ~pinned:v

let test_naive s =
  let serial_relations =
    List.map Read_from.std_relation (Schedule.all_serializations s)
  in
  Seq.exists
    (fun v ->
      let rel = Read_from.relation s v in
      List.exists (fun r -> r = rel) serial_relations)
    (Version_fn.enumerate s)
