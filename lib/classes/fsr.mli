(** Final-state serializability (FSR) — the outermost single-version
    notion, completing the classical hierarchy CSR ⊆ VSR ⊆ FSR that
    Fig. 1's single-version side lives in.

    Two schedules of the same system are final-state equivalent iff they
    leave the database in the same state for every interpretation of the
    transactions' functions — equivalently, iff their final writers and
    their {e live} READ-FROM relations coincide ({!Mvcc_core.Liveness}).
    A schedule is FSR iff it is final-state equivalent to some serial
    schedule. Testing FSR is NP-complete [6]; this is an exact
    factorial-search procedure for small instances. *)

module Decider : Mvcc_analysis.Decider.S
(** The FSR decision procedures over a shared analysis context: the
    factorial signature search runs once per context (memoized under a
    context key, reusing the cached live READ-FROMs and final writers)
    however many operations are called. [violation] is [None]. *)

val equivalent : Mvcc_core.Schedule.t -> Mvcc_core.Schedule.t -> bool
(** Final-state equivalence of two schedules of the same system.
    @raise Invalid_argument on different systems. *)

val test : Mvcc_core.Schedule.t -> bool
(** [test s] iff some serialization of [s]'s system is final-state
    equivalent to [s]. *)

val witness : Mvcc_core.Schedule.t -> Mvcc_core.Schedule.t option
(** A final-state-equivalent serial schedule, if any. *)

val decide : Mvcc_core.Schedule.t -> bool * Mvcc_provenance.Witness.t
(** The verdict of {!test} with a checkable certificate: the
    serialization order found on acceptance, the number of orders
    exhausted on rejection. *)
