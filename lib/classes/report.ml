open Mvcc_core

type verdict = {
  in_class : bool;
  witness : Schedule.t option;
  note : string option;
}

type t = {
  schedule : Schedule.t;
  serial : bool;
  csr : verdict;
  vsr : verdict;
  fsr : verdict;
  mvcsr : verdict;
  mvsr : verdict;
  dmvsr : verdict;
  region : Topography.region;
  mvsr_certificate : (int list * Version_fn.t) option;
}

let cycle_note name = function
  | None -> None
  | Some nodes ->
      Some
        (Printf.sprintf "%s cycle: %s" name
           (String.concat " -> "
              (List.map (fun i -> "T" ^ string_of_int (i + 1)) nodes)))

module Ctx = Mvcc_analysis.Ctx

let of_ctx c =
  let s = Ctx.schedule c in
  let csr =
    {
      in_class = Csr.Decider.test c;
      witness = Csr.Decider.witness c;
      note = cycle_note "conflict-graph" (Csr.Decider.violation c);
    }
  in
  let mvcsr =
    {
      in_class = Mvcsr.Decider.test c;
      witness = Mvcsr.Decider.witness c;
      note = cycle_note "MVCG" (Mvcsr.Decider.violation c);
    }
  in
  let vsr =
    {
      in_class = Vsr.Decider.test c;
      witness = Vsr.Decider.witness c;
      note =
        (if Vsr.Decider.test c then None
         else Some "the padded polygraph has no compatible acyclic digraph");
    }
  in
  let fsr =
    {
      in_class = Fsr.Decider.test c;
      witness = Fsr.Decider.witness c;
      note =
        (if Fsr.Decider.test c then None
         else Some "no serialization matches the live read-froms and finals");
    }
  in
  let cert = Mvsr.certificate_ctx c in
  let mvsr =
    {
      in_class = cert <> None;
      witness =
        Option.map (fun (order, _) -> Schedule.serialization s order) cert;
      note =
        (if cert <> None then None
         else Some "no version function and serial order agree");
    }
  in
  let dmvsr =
    {
      in_class = Dmvsr.Decider.test c;
      witness = None;
      note =
        (if Dmvsr.has_blind_writes s then
           Some "schedule has blind writes (reads inserted before testing)"
         else None);
    }
  in
  let membership =
    {
      Topography.serial = Ctx.is_serial c;
      csr = csr.in_class;
      vsr = vsr.in_class;
      mvcsr = mvcsr.in_class;
      mvsr = mvsr.in_class;
      dmvsr = dmvsr.in_class;
    }
  in
  {
    schedule = s;
    serial = Ctx.is_serial c;
    csr;
    vsr;
    fsr;
    mvcsr;
    mvsr;
    dmvsr;
    region = Topography.region membership;
    mvsr_certificate = cert;
  }

let make s = of_ctx (Ctx.make s)

let make_batch ?(pool = Mvcc_exec.Pool.sequential) ss =
  Mvcc_exec.Pool.map pool make ss

let pp_verdict name ppf v =
  Format.fprintf ppf "%-6s: %s" name (if v.in_class then "yes" else "no ");
  (match v.witness with
  | Some w when v.in_class ->
      Format.fprintf ppf "   serial witness: %a" Schedule.pp w
  | _ -> ());
  (match v.note with
  | Some n when not v.in_class -> Format.fprintf ppf "   (%s)" n
  | Some n -> Format.fprintf ppf "   [%s]" n
  | None -> ());
  Format.pp_print_newline ppf ()

let pp ppf t =
  Format.fprintf ppf "schedule: %a@." Schedule.pp t.schedule;
  Format.fprintf ppf "%a@." Schedule.pp_grid t.schedule;
  Format.fprintf ppf "serial: %b@." t.serial;
  pp_verdict "CSR" ppf t.csr;
  pp_verdict "VSR" ppf t.vsr;
  pp_verdict "FSR" ppf t.fsr;
  pp_verdict "MVCSR" ppf t.mvcsr;
  pp_verdict "MVSR" ppf t.mvsr;
  pp_verdict "DMVSR" ppf t.dmvsr;
  Format.fprintf ppf "region: %s@." (Topography.region_name t.region);
  match t.mvsr_certificate with
  | Some (order, v) ->
      Format.fprintf ppf "MVSR certificate: order %s, versions %a@."
        (String.concat " < "
           (List.map (fun i -> "T" ^ string_of_int (i + 1)) order))
        (Version_fn.pp t.schedule) v
  | None -> ()
