open Mvcc_core

let switchable s p =
  let a = Schedule.step s p and b = Schedule.step s (p + 1) in
  a.Step.txn <> b.Step.txn && not (Step.mv_conflicts ~first:a ~second:b)

let neighbours s =
  let acc = ref [] in
  for p = Schedule.length s - 2 downto 0 do
    if switchable s p then acc := Schedule.swap_adjacent s p :: !acc
  done;
  !acc

(* BFS over reorderings; states are keyed by their printed form. Returns
   the found serial schedule and the predecessor map for path recovery. *)
let bfs ?(max_states = 200_000) s =
  let seen = Hashtbl.create 1024 in
  let parent = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let key t = Schedule.to_string t in
  Hashtbl.replace seen (key s) s;
  Queue.add s queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let t = Queue.pop queue in
    if Schedule.is_serial t then found := Some t
    else
      List.iter
        (fun t' ->
          let k = key t' in
          if not (Hashtbl.mem seen k) then begin
            if Hashtbl.length seen >= max_states then
              failwith "Switching: state bound exhausted";
            Hashtbl.replace seen k t';
            Hashtbl.replace parent k t;
            Queue.add t' queue
          end)
        (neighbours t)
  done;
  (!found, parent)

let reaches_serial ?max_states s = fst (bfs ?max_states s)
let test ?max_states s = Option.is_some (reaches_serial ?max_states s)

module Ctx = Mvcc_analysis.Ctx

(* One BFS per context, at the default state bound only — callers that
   tune [max_states] go through the uncached entry points. *)
let reachable_key : Schedule.t option Ctx.key = Ctx.key "switching_reachable"

let reaches_serial_ctx c =
  Ctx.memo c reachable_key (fun c -> reaches_serial (Ctx.schedule c))

let test_ctx c = Option.is_some (reaches_serial_ctx c)

let path_to_serial ?max_states s =
  let found, parent = bfs ?max_states s in
  match found with
  | None -> None
  | Some t ->
      let rec walk acc t =
        match Hashtbl.find_opt parent (Schedule.to_string t) with
        | None -> t :: acc
        | Some prev -> walk (t :: acc) prev
      in
      Some (walk [] t)

let distance_to_serial ?max_states s =
  Option.map (fun p -> List.length p - 1) (path_to_serial ?max_states s)
