(** View serializability (VSR, Section 2) — the paper's "SR" region in
    Fig. 1.

    A schedule is VSR iff its padded schedule is view-equivalent to a
    serial schedule under the standard (single-version) version function:
    identical READ-FROM relations and identical final writers. Testing VSR
    is NP-complete [6]; two exact procedures are provided and
    cross-validated in the test suite. *)

module Decider : Mvcc_analysis.Decider.S
(** The VSR decision procedures over a shared analysis context: the
    polygraph is built and solved once per context ([Ctx.polygraph] /
    [Ctx.polygraph_solution]) however many operations are called.
    [violation] is [None] — VSR rejections are certified by search
    exhaustion, not a cycle. *)

val test : Mvcc_core.Schedule.t -> bool
(** Decide VSR via the polygraph of the padded schedule
    ({!polygraph_of}) — the construction of [6]. *)

val test_exact : Mvcc_core.Schedule.t -> bool
(** Oracle: search all serializations for a view-equivalent one
    ([n!]; small schedules only). *)

val witness : Mvcc_core.Schedule.t -> Mvcc_core.Schedule.t option
(** A view-equivalent serial schedule, if any (decoded from a compatible
    acyclic digraph of the polygraph). *)

val polygraph_of : Mvcc_core.Schedule.t -> Mvcc_polygraph.Polygraph.t
(** The polygraph of [6]: nodes are T0, the transactions, and Tf (padded
    indices); an arc [writer -> reader] per READ-FROM pair of the padded
    schedule, and per such pair a choice sending every other writer of the
    entity before the writer or after the reader. The schedule is VSR iff
    this polygraph is acyclic. *)

val decide : Mvcc_core.Schedule.t -> bool * Mvcc_provenance.Witness.t
(** The verdict of {!test} with a checkable certificate: a serialization
    order decoded from the compatible acyclic digraph on acceptance, the
    choice-tree search effort on rejection. *)

val decide_sat : Mvcc_core.Schedule.t -> bool * Mvcc_provenance.Witness.t
(** Like {!decide} through the SAT order encoding: the order decoded
    from a satisfying assignment ([Accept_assignment]) on acceptance,
    DPLL search effort on rejection. *)

val decide_sat_ctx :
  Mvcc_analysis.Ctx.t -> bool * Mvcc_provenance.Witness.t
(** {!decide_sat} sharing the context's cached polygraph (the SAT solve
    itself is not cached — it is the cross-check route). *)
