(** Conflict serializability (CSR, Section 2).

    A schedule is CSR iff it is conflict-equivalent to a serial schedule,
    iff its conflict graph is acyclic. Decidable in polynomial time; the
    class output by locking schedulers (Yannakakis [11]). *)

module Decider : Mvcc_analysis.Decider.S
(** The CSR decision procedures over a shared analysis context: the
    conflict graph, its topological order and its cycles are computed
    once per context however many of [test]/[witness]/[violation]/
    [decide] are called. *)

val test : Mvcc_core.Schedule.t -> bool
(** [test s] iff [s] is conflict-serializable. O(steps² + txns).
    Single-use context; batch callers should hold a [Ctx.t] and use
    {!Decider}. *)

val witness : Mvcc_core.Schedule.t -> Mvcc_core.Schedule.t option
(** A serial schedule conflict-equivalent to [s], if any: the transactions
    in topological order of the conflict graph. *)

val violation : Mvcc_core.Schedule.t -> int list option
(** A cycle of the conflict graph (transaction indices), if the schedule is
    not CSR — the set of transactions that cannot be untangled. *)

val decide : Mvcc_core.Schedule.t -> bool * Mvcc_provenance.Witness.t
(** The verdict of {!test} together with a checkable certificate: a
    topological order of the conflict graph on acceptance, a shortest
    conflict-graph cycle on rejection. *)
