(** The registry of first-class deciders.

    Every serializability class in the repository, as a
    {!Mvcc_analysis.Decider}: CSR, MVCSR, VSR, MVSR, FSR, DMVSR, plus a
    representative of the Ibaraki-Kameda lattice ([K{WW,RW}] — the other
    subsets are reachable through {!Family.decider}). The CLI's explain
    command, the invariance tests and the census sweeps iterate this
    list over one shared context per schedule. *)

val all : Mvcc_analysis.Decider.t list

val find : string -> Mvcc_analysis.Decider.t option
(** Look a decider up by its [name] (["CSR"], ["K{WW,RW}"], ...). *)
